package main

import (
	"testing"

	"repro/internal/arrival"
	"repro/internal/fault"
	"repro/internal/verbs"
)

// FuzzFaultPlanParse holds the -faults parser to its contract: any
// input either yields a validated plan or a descriptive error — never
// a panic, and never a plan that fails its own re-validation. CI runs
// it with a short -fuzztime budget on every push.
func FuzzFaultPlanParse(f *testing.F) {
	for _, spec := range []string{
		"default",
		"delay@1ms-2ms",
		"fail@2ms-4ms:kind=cas+faa,p=0.7,status=remote-access",
		"fail@0ns-1us:status=retry-exceeded",
		"drop@500us-900us:kind=read,drops=3,p=0.25",
		"blackhole@3600us-4ms:kind=read+write,p=0.15",
		"delay@2ms-3ms:x=6,kind=read+write;drop@3ms-3600us:drops=2,p=0.6",
		"",
		" ; ",
		"fail",
		"fail@",
		"fail@-",
		"@1ms-2ms",
		"delay@1ms-2ms:",
		"delay@1ms-2ms:p=",
		"delay@1ms-2ms:kind=",
		"delay@1ms-2ms:x=NaN",
		"delay@1ms-2ms:x=1e308",
		"drop@1ms-2ms:drops=-1",
		"delay@9999999999999999999ms-2ms",
		"delay@1ms-99999999s",
		"delay@1ms-2ms;delay@1ms-2ms",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := fault.Parse(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned both a plan and error %v", spec, err)
			}
			return
		}
		if p == nil {
			t.Fatalf("Parse(%q) returned neither plan nor error", spec)
		}
		// Whatever Parse accepts must survive re-validation: the rules
		// it hands the injector cannot be ones NewPlan would reject.
		if _, err := fault.NewPlan(p.Rules()); err != nil {
			t.Fatalf("Parse(%q) produced a plan NewPlan rejects: %v", spec, err)
		}
		start, end := p.Envelope()
		if start < 0 || end <= start {
			t.Fatalf("Parse(%q) produced an empty or negative envelope [%v, %v)", spec, start, end)
		}
	})
}

// FuzzArrivalSpecParse holds the -arrival parser to the same contract
// as the -faults one: any input either yields a validated spec or a
// descriptive error — never a panic, and never a spec that fails its
// own re-validation. CI runs it with a short -fuzztime budget on every
// push.
func FuzzArrivalSpecParse(f *testing.F) {
	for _, spec := range []string{
		"poisson",
		"poisson:rate=4",
		"poisson:rate=0.25",
		"mmpp",
		"mmpp:high=8,low=1,on=200us,off=600us",
		"mmpp:high=2,low=0,on=1ms,off=1ms",
		"trace:gaps=1us+2us+500ns",
		"trace:gaps=1us",
		"",
		":",
		"poisson:",
		"poisson:rate=",
		"poisson:rate=NaN",
		"poisson:rate=-1",
		"poisson:rate=1e308",
		"poisson:gaps=1us",
		"mmpp:low=20",
		"mmpp:on=0ns",
		"mmpp:on=99999999s",
		"trace",
		"trace:gaps=",
		"trace:gaps=1us+",
		"trace:gaps=0ns",
		"trace:gaps=-1us",
		"weibull:rate=4",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := arrival.Parse(spec)
		if err != nil {
			if s != nil {
				t.Fatalf("Parse(%q) returned both a spec and error %v", spec, err)
			}
			return
		}
		if s == nil {
			t.Fatalf("Parse(%q) returned neither spec nor error", spec)
		}
		// Whatever Parse accepts must survive re-validation and report
		// a usable mean rate — the sweep rescales by it.
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse(%q) produced a spec Validate rejects: %v", spec, err)
		}
		if mr := s.MeanRate(); !(mr > 0) {
			t.Fatalf("Parse(%q) produced mean rate %v", spec, mr)
		}
		// String() is the canonical form: it must reparse cleanly.
		if _, err := arrival.Parse(s.String()); err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", s.String(), spec, err)
		}
	})
}

// FuzzBatchingSpecParse holds the -batching parser to the same
// contract as the other spec parsers: any input either yields a config
// or a descriptive error — never a panic — and the canonical String()
// form of an accepted config reparses to the identical config. CI runs
// it with a short -fuzztime budget on every push.
func FuzzBatchingSpecParse(f *testing.F) {
	for _, spec := range []string{
		"off",
		"postlist",
		"coalesce",
		"both",
		"coalesce:batch=32,deadline=4us",
		"both:batch=1,deadline=2000ns,sharedcq",
		"postlist:sharedcq",
		"coalesce:deadline=50us",
		"",
		":",
		"off:",
		"coalesce:batch=",
		"coalesce:batch=0",
		"coalesce:batch=99999999",
		"coalesce:deadline=0ns",
		"coalesce:deadline=-1us",
		"coalesce:deadline=4parsecs",
		"turbo",
		"both:warp=9",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		b, err := verbs.ParseBatching(spec)
		if err != nil {
			if b.Enabled() {
				t.Fatalf("ParseBatching(%q) returned both a config and error %v", spec, err)
			}
			return
		}
		// Whatever Parse accepts must fill to usable knobs: the thread
		// setup divides by CoalesceBatch and arms FlushDeadline timers.
		d := b.WithDefaults()
		if d.Coalesce && (d.CoalesceBatch < 1 || d.FlushDeadline <= 0) {
			t.Fatalf("ParseBatching(%q).WithDefaults() left degenerate knobs: %+v", spec, d)
		}
		// String() is the canonical form: it must reparse to the same
		// config (defaults not yet filled on either side).
		rt, err := verbs.ParseBatching(b.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", b.String(), spec, err)
		}
		if rt != b {
			t.Fatalf("canonical form %q of %q reparses to %+v, want %+v", b.String(), spec, rt, b)
		}
	})
}
