// Smartlint is the contract linter for this reproduction: a
// multichecker that runs the eight custom analyzers from
// internal/analysis over the module, plus a selected set of `go vet`
// passes. Every number the reproduction reports depends on the
// discrete-event engine being bit-for-bit deterministic under a fixed
// seed and on the concurrency/fault contracts around it; these rules
// machine-check the invariants that keep it that way:
//
//	nowallclock    no wall-clock time sources inside simulation code
//	seededrand     no unseeded or global randomness
//	maporder       no map-iteration order leaking into simulation state
//	simtime        no real sleeps/timeouts where simulated time exists
//	sharedstate    no unsynchronized writes to per-run shared state
//	pointisolation sweep run closures touch only point-owned state
//	cqestatus      completion payloads consumed only after a status check
//	ignoreaudit    every ignore directive is named, reasoned, and live
//
// Usage:
//
//	go run ./cmd/smartlint [flags] [packages]
//
// with ./... as the default package pattern. Flags:
//
//	-tests=false          skip _test.go files
//	-vet=false            skip the go vet passes
//	-list                 list the analyzers and exit
//	-format text|json     diagnostic output format (default text)
//	-baseline FILE        adopt pre-existing diagnostics from FILE;
//	                      a missing file is an empty baseline
//	-write-baseline       rewrite the -baseline file from this run's
//	                      diagnostics and exit 0
//
// The exit status is 1 if any non-baselined diagnostic is reported or
// a vet pass fails, 2 if the module cannot be loaded, 0 otherwise.
// Individual findings can be suppressed with a
// `//smartlint:ignore <analyzer> — <reason>` comment on, or directly
// above, the flagged line; the ignoreaudit analyzer holds those
// directives to that form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis/cqestatus"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/ignoreaudit"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/pointisolation"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/sharedstate"
	"repro/internal/analysis/simtime"
)

// suite is the smartlint analyzer set, in reporting order; the
// framework runs ignoreaudit last, over the other analyzers'
// suppression accounting.
var suite = &framework.Suite{
	Analyzers: []*framework.Analyzer{
		nowallclock.Analyzer,
		seededrand.Analyzer,
		maporder.Analyzer,
		simtime.Analyzer,
		sharedstate.Analyzer,
		pointisolation.Analyzer,
		cqestatus.Analyzer,
		ignoreaudit.Analyzer,
	},
}

// vetPasses are the stock `go vet` analyzers worth running alongside
// the contract suite (the full vet set runs as its own CI step).
var vetPasses = []string{"-printf", "-copylocks", "-atomic", "-unreachable", "-bools"}

func main() {
	os.Exit(run(".", os.Stdout, os.Stderr, os.Args[1:]))
}

// run is the whole command, parameterized for tests: dir is the
// module directory, and the returned int is the exit status.
func run(dir string, stdout, stderr io.Writer, argv []string) int {
	fs := flag.NewFlagSet("smartlint", flag.ExitOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", true, "also analyze _test.go files")
	vet := fs.Bool("vet", true, "also run selected go vet passes")
	list := fs.Bool("list", false, "list the analyzers and exit")
	format := fs.String("format", "text", "diagnostic output format: text or json")
	baselinePath := fs.String("baseline", "", "baseline `file` adopting pre-existing diagnostics (missing file = empty baseline)")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from this run's diagnostics and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: smartlint [flags] [package pattern ...]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nanalyzers:\n")
		for _, a := range suite.Analyzers {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(argv)

	if *list {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "smartlint: unknown -format %q (want text or json)\n", *format)
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "smartlint: -write-baseline requires -baseline")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := framework.LoadModule(dir, *tests, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "smartlint:", err)
		return 2
	}

	var findings []framework.Finding
	for _, pkg := range pkgs {
		diags, err := suite.Run(pkg)
		if err != nil {
			fmt.Fprintln(stderr, "smartlint:", err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(dir, name); err == nil {
				name = rel
			}
			findings = append(findings, framework.Finding{
				Analyzer: d.Analyzer,
				File:     filepath.ToSlash(name),
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		}
	}

	if *writeBaseline {
		if err := framework.WriteBaseline(filepath.Join(dir, *baselinePath), findings); err != nil {
			fmt.Fprintln(stderr, "smartlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "smartlint: baseline %s adopted %d diagnostic(s)\n", *baselinePath, len(findings))
		return 0
	}

	if *baselinePath != "" {
		baseline, err := framework.LoadBaseline(filepath.Join(dir, *baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "smartlint:", err)
			return 2
		}
		for i := range findings {
			findings[i].Baselined = baseline.Match(findings[i])
		}
	}

	// Vet output goes to stderr in both formats so stdout carries
	// nothing but the findings (text) or the report (json).
	vetStatus := "skipped"
	if *vet {
		vetStatus = "ok"
		args := append(append([]string{"vet"}, vetPasses...), patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			vetStatus = "failed"
		}
	}

	report := framework.NewReport(suite.Names(), findings, vetStatus)
	switch *format {
	case "text":
		for _, f := range report.Findings {
			if f.Baselined {
				fmt.Fprintf(stdout, "%s (baselined)\n", f)
			} else {
				fmt.Fprintln(stdout, f)
			}
		}
	case "json":
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "smartlint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	}

	// Distinct summaries: "which gate failed" must be readable off
	// stderr alone.
	failed := false
	if report.Summary.Fresh > 0 {
		failed = true
		fmt.Fprintf(stderr, "smartlint: %d diagnostic(s): %d fresh, %d baselined\n",
			report.Summary.Total, report.Summary.Fresh, report.Summary.Baselined)
	}
	if vetStatus == "failed" {
		failed = true
		fmt.Fprintln(stderr, "smartlint: go vet failed (see output above)")
	}
	if failed {
		return 1
	}
	return 0
}
