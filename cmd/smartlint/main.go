// Smartlint is the determinism linter for this reproduction: a
// multichecker that runs the five custom analyzers from
// internal/analysis (nowallclock, seededrand, maporder, simtime,
// sharedstate) over the module, plus a selected set of `go vet` passes. Every number
// the reproduction reports depends on the discrete-event engine being
// bit-for-bit deterministic under a fixed seed; these rules machine-
// check the invariants that keep it that way.
//
// Usage:
//
//	go run ./cmd/smartlint [-tests=false] [-vet=false] [packages]
//
// with ./... as the default package pattern. The exit status is
// nonzero if any analyzer reports a diagnostic or a vet pass fails.
// Individual findings can be suppressed with a
// `//smartlint:ignore <analyzer>` comment on, or directly above, the
// flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/sharedstate"
	"repro/internal/analysis/simtime"
)

// analyzers is the smartlint suite, in reporting order.
var analyzers = []*framework.Analyzer{
	nowallclock.Analyzer,
	seededrand.Analyzer,
	maporder.Analyzer,
	simtime.Analyzer,
	sharedstate.Analyzer,
}

// vetPasses are the stock `go vet` analyzers worth running alongside
// the determinism suite (the full vet set runs as its own CI step).
var vetPasses = []string{"-printf", "-copylocks", "-atomic", "-unreachable", "-bools"}

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	vet := flag.Bool("vet", true, "also run selected go vet passes")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: smartlint [flags] [package pattern ...]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := framework.LoadModule(".", *tests, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartlint:", err)
		os.Exit(2)
	}

	wd, _ := os.Getwd()
	failed := false
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := framework.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smartlint:", err)
				os.Exit(2)
			}
			for _, d := range diags {
				failed = true
				pos := pkg.Fset.Position(d.Pos)
				name := pos.Filename
				if rel, err := filepath.Rel(wd, name); err == nil {
					name = rel
				}
				fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
			}
		}
	}

	if *vet {
		args := append(append([]string{"vet"}, vetPasses...), patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}
