package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// writeModule materializes a throwaway module for run() to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmplint\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// mapOrderViolation trips maporder: the append observes randomized
// iteration order.
const mapOrderViolation = `package p

func Order(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`

func runCmd(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(dir, &out, &errb, args)
	return code, out.String(), errb.String()
}

func TestFreshFindingTextOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": mapOrderViolation})
	code, stdout, stderr := runCmd(t, dir, "-vet=false")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "p/p.go:5:2: maporder:") {
		t.Errorf("stdout missing text diagnostic:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 fresh") {
		t.Errorf("stderr missing fresh-diagnostics summary:\n%s", stderr)
	}
	if strings.Contains(stderr, "go vet failed") {
		t.Errorf("stderr claims a vet failure for a skipped vet run:\n%s", stderr)
	}
}

func TestJSONReport(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": mapOrderViolation})
	code, stdout, _ := runCmd(t, dir, "-vet=false", "-format", "json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep framework.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout)
	}
	if rep.Version != 1 || rep.Vet != "skipped" {
		t.Errorf("report header = version %d vet %q, want version 1 vet skipped", rep.Version, rep.Vet)
	}
	if len(rep.Analyzers) != 8 {
		t.Errorf("report lists %d analyzers, want 8: %v", len(rep.Analyzers), rep.Analyzers)
	}
	if rep.Summary.Total != 1 || rep.Summary.Fresh != 1 || rep.Summary.Baselined != 0 {
		t.Errorf("summary = %+v, want 1 total / 1 fresh / 0 baselined", rep.Summary)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "maporder" || rep.Findings[0].File != "p/p.go" {
		t.Errorf("findings = %+v", rep.Findings)
	}
}

func TestBaselineAdoptionRoundTrip(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": mapOrderViolation})
	code, _, stderr := runCmd(t, dir, "-vet=false", "-baseline", "bl.json", "-write-baseline")
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "adopted 1 diagnostic") {
		t.Errorf("write-baseline summary missing:\n%s", stderr)
	}
	code, stdout, stderr := runCmd(t, dir, "-vet=false", "-baseline", "bl.json")
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "(baselined)") {
		t.Errorf("baselined finding not marked in text output:\n%s", stdout)
	}
	// The baseline is a budget keyed by file: the same violation
	// appearing in a second file must still fail.
	second := strings.Replace(mapOrderViolation, "func Order(", "func Order2(", 1)
	if err := os.WriteFile(filepath.Join(dir, "p", "q.go"), []byte(second), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, _ = runCmd(t, dir, "-vet=false", "-baseline", "bl.json")
	if code != 1 {
		t.Fatalf("run with an extra violation exit = %d, want 1", code)
	}
}

func TestTestsFlagSkipsTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/p.go":      "package p\n",
		"p/p_test.go": mapOrderViolation,
	})
	if code, stdout, stderr := runCmd(t, dir, "-vet=false", "-tests=false"); code != 0 {
		t.Fatalf("-tests=false exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if code, _, _ := runCmd(t, dir, "-vet=false"); code != 1 {
		t.Fatalf("default run exit = %d, want 1 (violation lives in a _test.go file)", code)
	}
}

func TestVetFailureDistinctSummary(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p/p.go": "package p\n\nimport \"fmt\"\n\nfunc Bad() string { return fmt.Sprintf(\"%d\", \"x\") }\n",
	})
	code, _, stderr := runCmd(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "go vet failed") {
		t.Errorf("stderr missing vet-failure summary:\n%s", stderr)
	}
	if strings.Contains(stderr, "fresh") {
		t.Errorf("stderr reports analyzer diagnostics for a vet-only failure:\n%s", stderr)
	}
}

func TestListAndBadFormat(t *testing.T) {
	code, stdout, _ := runCmd(t, t.TempDir(), "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"nowallclock", "pointisolation", "cqestatus", "ignoreaudit"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
	if code, _, _ := runCmd(t, t.TempDir(), "-format", "xml"); code != 2 {
		t.Errorf("-format xml exit = %d, want 2", code)
	}
	if code, _, _ := runCmd(t, t.TempDir(), "-write-baseline"); code != 2 {
		t.Errorf("-write-baseline without -baseline exit = %d, want 2", code)
	}
}
