// Command testrdma mirrors the basic test of the paper's artifact
// (test/test_rdma): it measures the throughput of 8-byte READ or WRITE
// between a compute blade and a memory blade at a given thread count
// and concurrency depth, with SMART's optimizations enabled by
// default.
//
//	testrdma [flags] [nr_thread] [outstanding_work_requests_per_thread]
//
// Example (matching the artifact's sample invocation):
//
//	testrdma 96 8
//	rdma-read: #threads=96, #depth=8, #block_size=8, IOPS=102.63 M/s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/rnic"
	"repro/internal/sim"
)

func main() {
	var (
		op      = flag.String("op", "read", "read or write")
		block   = flag.Int("block", 8, "payload bytes per work request")
		policy  = flag.String("policy", "per-thread-doorbell", "shared-qp | multiplexed-qp | per-thread-qp | per-thread-context | per-thread-doorbell")
		smart   = flag.Bool("smart", true, "enable SMART's throttling (thread-aware allocation comes from -policy)")
		measure = flag.Int("ms", 4, "measurement window, simulated milliseconds")
	)
	flag.Parse()

	threads, depth := 96, 8
	if args := flag.Args(); len(args) > 0 {
		threads = atoi(args[0])
		if len(args) > 1 {
			depth = atoi(args[1])
		}
	}

	kind := rnic.OpRead
	if *op == "write" {
		kind = rnic.OpWrite
	}

	var pol core.Policy
	switch *policy {
	case "shared-qp":
		pol = core.SharedQP
	case "multiplexed-qp":
		pol = core.MultiplexedQP
	case "per-thread-qp":
		pol = core.PerThreadQP
	case "per-thread-context":
		pol = core.PerThreadContext
	case "per-thread-doorbell":
		pol = core.PerThreadDoorbell
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}
	opts := core.Baseline(pol)
	if *smart {
		opts.WorkReqThrottle = true
		opts.UpdateDelta = 400 * sim.Microsecond
	}

	r := bench.RunMicro(bench.MicroConfig{
		Opts: opts, Threads: threads, Batch: depth,
		Op: kind, Payload: *block, Seed: 1,
		Measure: sim.Time(*measure) * sim.Millisecond,
	})

	bw := r.MOPS * float64(*block) // MB/s
	fmt.Printf("rdma-%s: #threads=%d, #depth=%d, #block_size=%d, BW=%.3f MB/s, IOPS=%.3f M/s\n",
		*op, threads, depth, *block, bw, r.MOPS)
	fmt.Printf("         dma=%.0f B/WR, wqe-miss=%.2f, policy=%s, throttling=%v\n",
		r.DMABytesPerWR, r.WQEMissRate, pol, *smart)
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		fmt.Fprintf(os.Stderr, "bad count %q\n", s)
		os.Exit(2)
	}
	return n
}
